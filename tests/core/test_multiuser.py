"""Unit tests for the multi-headset serving core."""

import math

import pytest

from repro import telemetry
from repro.core.multiuser import MultiUserSystem
from repro.experiments.testbed import default_testbed
from repro.geometry.bodies import person_blocking_path
from repro.geometry.mobility import PoseSample
from repro.geometry.vectors import Vec2

FRAME_DT_S = 1.0 / 90.0


def make_multiuser(num_users, num_reflectors=1, seed=7, **kwargs):
    testbed = default_testbed(
        seed=seed, num_reflectors=num_reflectors, shadowing_sigma_db=0.0
    )
    return testbed, MultiUserSystem(testbed.system, num_users=num_users, **kwargs)


def clear_poses(n):
    """Poses with line of sight to the AP, spread along the far diagonal."""
    spots = [
        Vec2(3.0, 4.0),
        Vec2(4.0, 3.0),
        Vec2(2.5, 3.5),
        Vec2(3.5, 2.5),
        Vec2(2.0, 4.2),
        Vec2(4.2, 2.0),
    ]
    return [PoseSample(0.0, spots[i], -135.0) for i in range(n)]


class TestValidation:
    def test_needs_a_user(self):
        testbed = default_testbed(seed=1)
        with pytest.raises(ValueError):
            MultiUserSystem(testbed.system, num_users=0)

    def test_probes_non_negative(self):
        testbed = default_testbed(seed=1)
        with pytest.raises(ValueError):
            MultiUserSystem(testbed.system, num_users=1, probes_per_search=-1)

    def test_pose_count_must_match(self):
        _, mu = make_multiuser(2)
        with pytest.raises(ValueError):
            mu.step(0.0, clear_poses(1))


class TestReflectorContention:
    def _blocked_step(self, mu, testbed, poses, t_s):
        blockers = []
        for pose in poses:
            person = person_blocking_path(
                testbed.ap.position, pose.position, 0.5
            )
            blockers.extend(person.occluders())
        return mu.step(t_s, poses, extra_occluders=blockers)

    def test_two_blocked_users_one_reflector(self):
        """Two blocked users, one reflector: exactly one HANDOFF and
        exactly one contention event."""
        testbed, mu = make_multiuser(2, num_reflectors=1)
        poses = clear_poses(2)
        with telemetry.scope("t") as sc:
            first = mu.step(0.0, poses)
            assert all(d.mode == "los" for d in first.decisions)
            tick = self._blocked_step(mu, testbed, poses, FRAME_DT_S)
            kinds = [e.kind for e in sc.events]
        assert kinds.count(telemetry.EventKind.HANDOFF) == 1
        assert kinds.count(telemetry.EventKind.CONTENTION) == 1
        modes = sorted(d.mode for d in tick.decisions)
        assert "reflector" in modes
        winners = [d for d in tick.decisions if d.mode == "reflector"]
        losers = [d for d in tick.decisions if d.mode != "reflector"]
        assert len(winners) == 1 and winners[0].via == "movr0"
        assert len(losers) == 1 and losers[0].contended
        assert losers[0].via is None

    def test_contention_event_names_reflector_and_winner(self):
        testbed, mu = make_multiuser(2, num_reflectors=1)
        poses = clear_poses(2)
        with telemetry.scope("t") as sc:
            mu.step(0.0, poses)
            tick = self._blocked_step(mu, testbed, poses, FRAME_DT_S)
        contentions = [
            e for e in sc.events if e.kind is telemetry.EventKind.CONTENTION
        ]
        assert len(contentions) == 1
        fields = contentions[0].fields
        winner = next(d for d in tick.decisions if d.mode == "reflector")
        loser = next(d for d in tick.decisions if d.contended)
        assert fields["reflector"] == "movr0"
        assert fields["winner"] == winner.user
        assert fields["user"] == loser.user

    def test_two_reflectors_no_contention(self):
        testbed, mu = make_multiuser(2, num_reflectors=2)
        poses = clear_poses(2)
        with telemetry.scope("t") as sc:
            mu.step(0.0, poses)
            tick = self._blocked_step(mu, testbed, poses, FRAME_DT_S)
        kinds = [e.kind for e in sc.events]
        assert kinds.count(telemetry.EventKind.CONTENTION) == 0
        vias = {d.via for d in tick.decisions if d.mode == "reflector"}
        assert len(vias) == 2  # each user won a different reflector

    def test_first_tick_emits_no_handoff(self):
        _, mu = make_multiuser(2)
        with telemetry.scope("t") as sc:
            mu.step(0.0, clear_poses(2))
        assert not [
            e for e in sc.events if e.kind is telemetry.EventKind.HANDOFF
        ]

    def test_reset_forgets_serving_state(self):
        testbed, mu = make_multiuser(2)
        poses = clear_poses(2)
        mu.step(0.0, poses)
        self._blocked_step(mu, testbed, poses, FRAME_DT_S)
        mu.reset_link_state()
        with telemetry.scope("t") as sc:
            self._blocked_step(mu, testbed, poses, 2 * FRAME_DT_S)
        # Fresh session: first decision, no transition memory.
        assert not [
            e for e in sc.events if e.kind is telemetry.EventKind.HANDOFF
        ]


class TestMutualBlockage:
    def test_other_player_blocks_the_path(self):
        testbed, mu = make_multiuser(2)
        far = PoseSample(0.0, Vec2(4.0, 4.0), -135.0)
        # User 1 stands on user 0's AP line; their torso occludes it.
        midpoint = PoseSample(0.0, Vec2(2.15, 2.15), -135.0)
        tick = mu.step(0.0, [far, midpoint])
        blocked = tick.decisions[0]
        assert blocked.direct_snr_db < testbed.system.handoff_snr_db
        assert blocked.mode != "los"

    def test_clear_spacing_keeps_los(self):
        _, mu = make_multiuser(2)
        tick = mu.step(0.0, clear_poses(2))
        assert all(d.mode == "los" for d in tick.decisions)

    def test_own_body_not_in_own_scene(self):
        _, mu = make_multiuser(1)
        occluders = mu.mutual_occluders(0, clear_poses(1))
        assert occluders == []

    def test_each_user_sees_all_other_bodies(self):
        _, mu = make_multiuser(3, num_reflectors=1)
        occluders = mu.mutual_occluders(0, clear_poses(3))
        # Two other players, two circles (torso + head) each.
        assert len(occluders) == 4


class TestAirtimeSharing:
    def test_frame_loss_grows_with_n(self):
        losses = {}
        for n in (1, 4):
            _, mu = make_multiuser(n)
            poses = clear_poses(n)
            mu.step(0.0, poses)  # acquisition tick (probes everywhere)
            tick = mu.step(FRAME_DT_S, poses)  # steady state
            losses[n] = tick.window.frames_lost
        assert losses[1] == 0
        assert losses[4] > losses[1]

    def test_searches_cost_probe_airtime(self):
        _, mu = make_multiuser(2)
        poses = clear_poses(2)
        first = mu.step(0.0, poses)  # every user acquires: N searches
        assert first.window.probe_time_s == pytest.approx(
            2 * mu.probes_per_search * mu.scheduler.probe_time_s
        )
        steady = mu.step(FRAME_DT_S, poses)  # nothing changed: no probes
        assert steady.window.probe_time_s == 0.0


class TestQoeSeries:
    def test_per_user_and_aggregate_series_recorded(self):
        _, mu = make_multiuser(2)
        poses = clear_poses(2)
        with telemetry.scope("t") as sc:
            for k in range(3):
                mu.step(k * FRAME_DT_S, poses)
        names = sc.registry.series_names()
        for expected in (
            "user0.rate.mbps",
            "user1.rate.mbps",
            "user0.rate.snr_db",
            "user0.mode_code",
            "users.worst.rate_mbps",
            "users.mean.rate_mbps",
            "users.frame_loss_fraction",
        ):
            assert expected in names, f"missing {expected} in {names}"

    def test_worst_user_is_min_of_users(self):
        _, mu = make_multiuser(3)
        poses = clear_poses(3)
        with telemetry.scope("t") as sc:
            mu.step(0.0, poses)
        worst = sc.registry.get_series("users.worst.rate_mbps").points()[-1][1]
        mean = sc.registry.get_series("users.mean.rate_mbps").points()[-1][1]
        rates = [a.current_rate_mbps for a in mu.adapters]
        assert worst == pytest.approx(min(rates))
        assert mean == pytest.approx(sum(rates) / len(rates))
        assert worst <= mean

    def test_per_user_slos_discovered(self):
        from repro.telemetry.slo import evaluate_scope, per_user_slos

        _, mu = make_multiuser(2)
        poses = clear_poses(2)
        with telemetry.scope("t") as sc:
            # Enough span for a 10 s SLO window at min_samples=2.
            for k in range(5):
                mu.step(k * 3.0, poses)
            specs = per_user_slos(sc)
            names = {spec.name for spec in specs}
            assert names == {
                "user0-time-below-required-rate",
                "user1-time-below-required-rate",
            }
            results = evaluate_scope(sc, emit=False)
        evaluated = {r.spec.name for r in results}
        assert "user0-time-below-required-rate" in evaluated
        assert "worst-user-rate" in evaluated
