"""The bench runner: target selection, min-of-k timing, counter capture."""

import pytest

from repro.bench.runner import BenchResult, run_suite, run_target
from repro.bench.targets import BENCH_TARGETS, BenchTarget, select_targets


def _tiny_target(calls):
    def fn(scale=100):
        calls.append(scale)
        # Real work inside a telemetry scope, so counters register.
        from repro import telemetry

        telemetry.inc("test.work", scale)
        return sum(range(scale))

    return BenchTarget(
        name="tiny",
        description="test workload",
        fn=fn,
        kwargs={"scale": 100},
        quick_kwargs={"scale": 10},
    )


class TestSelection:
    def test_full_suite_covers_the_paper_figures(self):
        names = {t.name for t in BENCH_TARGETS}
        assert {"fig7-leakage", "fig8-alignment", "fig9-snr-cdf", "e2e-session"} <= names

    def test_quick_mode_drops_opted_out_targets(self):
        quick_names = {t.name for t in select_targets(quick=True)}
        full_names = {t.name for t in select_targets(quick=False)}
        assert "fig3-blockage" in full_names
        assert "fig3-blockage" not in quick_names

    def test_only_filters_by_substring(self):
        selected = select_targets(only="fig7,fig9")
        assert {t.name for t in selected} == {"fig7-leakage", "fig9-snr-cdf"}

    def test_unmatched_filter_raises(self):
        with pytest.raises(ValueError, match="no benchmark targets"):
            select_targets(only="nonsense")

    def test_quick_kwargs_merge_over_full(self):
        target = next(t for t in BENCH_TARGETS if t.name == "fig8-alignment")
        assert target.call_kwargs(quick=False)["num_runs"] == 100
        quick = target.call_kwargs(quick=True)
        assert quick["num_runs"] == 20
        assert quick["seed"] == 2016


class TestRunner:
    def test_min_of_k_rounds(self):
        calls = []
        result = run_target(_tiny_target(calls), rounds=3, quick=False)
        assert calls == [100, 100, 100]
        assert result.rounds == 3
        assert result.min_ms == min(result.timings_ms)
        assert result.min_ms <= result.mean_ms <= result.max_ms
        assert result.counters["test.work"] == 100

    def test_quick_mode_uses_quick_kwargs(self):
        calls = []
        run_target(_tiny_target(calls), rounds=1, quick=True)
        assert calls == [10]

    def test_rounds_must_be_positive(self):
        with pytest.raises(ValueError):
            run_target(_tiny_target([]), rounds=0, quick=False)

    def test_suite_logs_progress(self):
        lines = []
        results = run_suite([_tiny_target([])], rounds=1, log=lines.append)
        assert len(results) == 1
        assert any("tiny" in line for line in lines)

    def test_result_to_dict_is_json_shaped(self):
        result = BenchResult(
            name="x",
            description="d",
            quick=False,
            timings_ms=[2.0, 1.0],
            counters={"c": 1},
        )
        data = result.to_dict()
        assert data["min_ms"] == 1.0
        assert data["rounds"] == 2
        assert data["counters"] == {"c": 1}
