"""The bench trajectory: entry schema, append-only indexing, diffs."""

import json

import pytest

from repro.bench.runner import BenchResult
from repro.bench.trajectory import (
    DEFAULT_THRESHOLD_PCT,
    SCHEMA,
    diff_entries,
    latest_entry,
    list_entries,
    load_entry,
    make_entry,
    next_index,
    validate_entry,
    write_entry,
)


def result(name="fig7-leakage", timings=(10.0, 9.0, 11.0)):
    return BenchResult(
        name=name,
        description="test target",
        quick=False,
        timings_ms=list(timings),
        counters={"kernel.batches": 4},
    )


class TestEntrySchema:
    def test_make_entry_is_schema_valid(self):
        entry = make_entry([result()], quick=False, index=0)
        validate_entry(entry)
        assert entry["schema"] == SCHEMA
        bench = entry["benchmarks"]["fig7-leakage"]
        assert bench["min_ms"] == 9.0
        assert bench["rounds"] == 3
        assert bench["counters"]["kernel.batches"] == 4

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            make_entry([], quick=False)

    @pytest.mark.parametrize(
        "mutation",
        [
            {"schema": "other/1"},
            {"index": -1},
            {"quick": "yes"},
            {"fingerprint": None},
            {"benchmarks": {}},
            {"benchmarks": {"x": {"min_ms": -1.0, "rounds": 1}}},
            {"benchmarks": {"x": {"min_ms": 1.0, "rounds": 0}}},
        ],
    )
    def test_validate_rejects_malformed(self, mutation):
        entry = make_entry([result()], quick=False)
        entry.update(mutation)
        with pytest.raises(ValueError):
            validate_entry(entry)


class TestAppendOnly:
    def test_indices_increment_and_never_overwrite(self, tmp_path):
        path0, entry0 = write_entry(tmp_path, [result()], quick=True)
        path1, entry1 = write_entry(tmp_path, [result()], quick=True)
        assert path0.name == "BENCH_0.json"
        assert path1.name == "BENCH_1.json"
        assert entry0["index"] == 0 and entry1["index"] == 1
        assert [i for i, _ in list_entries(tmp_path)] == [0, 1]
        assert next_index(tmp_path) == 2

    def test_latest_entry_roundtrips(self, tmp_path):
        assert latest_entry(tmp_path) is None
        write_entry(tmp_path, [result()], quick=False)
        path, entry = latest_entry(tmp_path)
        assert entry == load_entry(path)

    def test_gaps_in_the_sequence_are_tolerated(self, tmp_path):
        write_entry(tmp_path, [result()], quick=False)
        entry = make_entry([result()], quick=False, index=7)
        with open(tmp_path / "BENCH_7.json", "w") as fh:
            json.dump(entry, fh)
        assert next_index(tmp_path) == 8


class TestDiff:
    def test_self_diff_reports_no_regression(self, tmp_path):
        _, entry = write_entry(tmp_path, [result()], quick=False)
        diff = diff_entries(entry, entry)
        assert diff.comparable
        assert diff.rows[0].delta_pct == 0.0
        assert diff.regressions == []

    def test_regression_past_threshold_is_flagged(self):
        prev = make_entry([result(timings=(10.0,))], quick=False, index=0)
        cur = make_entry([result(timings=(13.0,))], quick=False, index=1)
        diff = diff_entries(prev, cur, threshold_pct=20.0)
        assert diff.comparable
        assert len(diff.regressions) == 1
        assert diff.regressions[0].delta_pct == pytest.approx(30.0)
        assert any("REGRESSION" in line for line in diff.format_lines())

    def test_slowdown_within_threshold_is_noise(self):
        prev = make_entry([result(timings=(10.0,))], quick=False, index=0)
        cur = make_entry([result(timings=(11.5,))], quick=False, index=1)
        diff = diff_entries(prev, cur, threshold_pct=DEFAULT_THRESHOLD_PCT)
        assert diff.regressions == []

    def test_quick_vs_full_is_informational_only(self):
        prev = make_entry([result(timings=(10.0,))], quick=True, index=0)
        cur = make_entry([result(timings=(100.0,))], quick=False, index=1)
        diff = diff_entries(prev, cur)
        assert not diff.comparable
        assert "quick" in diff.reason
        assert diff.regressions == []
        assert any("informational" in line for line in diff.format_lines())

    def test_fingerprint_mismatch_is_informational_only(self):
        prev = make_entry([result(timings=(10.0,))], quick=False, index=0)
        cur = make_entry([result(timings=(100.0,))], quick=False, index=1)
        prev["fingerprint"] = dict(prev["fingerprint"], machine="riscv64")
        diff = diff_entries(prev, cur)
        assert not diff.comparable
        assert diff.regressions == []

    def test_added_and_dropped_benchmarks_are_reported(self):
        prev = make_entry([result(name="old")], quick=False, index=0)
        cur = make_entry([result(name="new")], quick=False, index=1)
        diff = diff_entries(prev, cur)
        assert diff.only_prev == ["old"]
        assert diff.only_cur == ["new"]
