"""Unit tests for the battery/power model (paper section 6)."""

import pytest

from repro.vr.power import (
    ANKER_ASTRO_5200,
    PAPER_POWER_MODEL,
    BatteryPack,
    HeadsetPowerModel,
    paper_runtime_claim_hours,
)


class TestBatteryPack:
    def test_paper_pack(self):
        assert ANKER_ASTRO_5200.capacity_mah == 5200.0

    def test_usable_capacity_derated(self):
        assert ANKER_ASTRO_5200.usable_capacity_mah < 5200.0

    def test_energy(self):
        pack = BatteryPack(capacity_mah=1000.0, voltage_v=5.0)
        assert pack.energy_wh == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryPack(capacity_mah=0.0)
        with pytest.raises(ValueError):
            BatteryPack(capacity_mah=100.0, usable_fraction=1.5)


class TestHeadsetPowerModel:
    def test_paper_claim_4_to_5_hours(self):
        """Section 6: a 5200 mAh pack runs the headset 4-5 hours."""
        assert 3.5 <= paper_runtime_claim_hours() <= 5.5

    def test_max_draw_runtime(self):
        # At the full 1500 mA the same pack gives ~3.3 h.
        assert PAPER_POWER_MODEL.runtime_hours(ANKER_ASTRO_5200) == pytest.approx(
            3.29, abs=0.1
        )

    def test_receiver_draw_reduces_runtime(self):
        base = HeadsetPowerModel()
        with_rx = HeadsetPowerModel(mmwave_rx_current_ma=300.0)
        assert with_rx.runtime_hours(ANKER_ASTRO_5200) < base.runtime_hours(
            ANKER_ASTRO_5200
        )

    def test_duty_cycle_extends_runtime(self):
        full = HeadsetPowerModel(duty_cycle=1.0)
        partial = HeadsetPowerModel(duty_cycle=0.5)
        assert partial.runtime_hours(ANKER_ASTRO_5200) == pytest.approx(
            2.0 * full.runtime_hours(ANKER_ASTRO_5200)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            HeadsetPowerModel(headset_current_ma=0.0)
        with pytest.raises(ValueError):
            HeadsetPowerModel(mmwave_rx_current_ma=-1.0)
        with pytest.raises(ValueError):
            HeadsetPowerModel(duty_cycle=0.0)
