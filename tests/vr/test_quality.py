"""Unit tests for QoE metrics."""

import pytest

from repro.vr.quality import FrameOutcome, GlitchTracker, glitch_rate_from_rates


def delivered(index, t, latency=0.005):
    return FrameOutcome(
        frame_index=index, emit_time_s=t, delivered=True, delivery_time_s=t + latency
    )


def missed(index, t):
    return FrameOutcome(frame_index=index, emit_time_s=t, delivered=False)


class TestFrameOutcome:
    def test_latency(self):
        assert delivered(0, 1.0, 0.004).latency_s == pytest.approx(0.004)
        assert missed(0, 1.0).latency_s is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameOutcome(frame_index=0, emit_time_s=0.0, delivered=True)
        with pytest.raises(ValueError):
            FrameOutcome(
                frame_index=0, emit_time_s=1.0, delivered=True, delivery_time_s=0.5
            )


class TestGlitchTracker:
    def make_tracker(self, pattern):
        tracker = GlitchTracker(frame_interval_s=0.01)
        for i, ok in enumerate(pattern):
            outcome = delivered(i, i * 0.01) if ok else missed(i, i * 0.01)
            tracker.record(outcome)
        return tracker

    def test_glitch_rate(self):
        tracker = self.make_tracker([True, False, True, False])
        assert tracker.glitch_rate == pytest.approx(0.5)
        assert tracker.glitch_count == 2

    def test_perfect_session(self):
        tracker = self.make_tracker([True] * 10)
        assert tracker.glitch_rate == 0.0
        assert tracker.longest_stall_s == 0.0
        assert tracker.mean_time_between_glitches_s == float("inf")

    def test_longest_stall(self):
        tracker = self.make_tracker([True, False, False, False, True, False])
        assert tracker.longest_stall_s == pytest.approx(0.03)

    def test_mtbg(self):
        tracker = self.make_tracker([True, False] * 5)
        assert tracker.mean_time_between_glitches_s == pytest.approx(0.02)

    def test_mean_latency(self):
        tracker = GlitchTracker(frame_interval_s=0.01)
        tracker.record(delivered(0, 0.0, 0.004))
        tracker.record(delivered(1, 0.01, 0.006))
        assert tracker.mean_latency_s() == pytest.approx(0.005)

    def test_out_of_order_rejected(self):
        tracker = self.make_tracker([True])
        with pytest.raises(ValueError):
            tracker.record(delivered(0, 0.02))

    def test_empty_metrics_raise(self):
        tracker = GlitchTracker(frame_interval_s=0.01)
        with pytest.raises(ValueError):
            tracker.glitch_rate
        with pytest.raises(ValueError):
            tracker.mean_latency_s()

    def test_summary_keys(self):
        summary = self.make_tracker([True, False]).summary()
        assert set(summary) == {
            "frames",
            "glitches",
            "glitch_rate",
            "longest_stall_s",
            "mtbg_s",
        }

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            GlitchTracker(frame_interval_s=0.0)


class TestGlitchRateFromRates:
    def test_basic(self):
        rates = [5000.0, 3000.0, 5000.0, 1000.0]
        assert glitch_rate_from_rates(rates, 4000.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            glitch_rate_from_rates([], 4000.0)
        with pytest.raises(ValueError):
            glitch_rate_from_rates([100.0], 0.0)
