"""Unit tests for the VR traffic model."""

import pytest

from repro.vr.traffic import (
    DEFAULT_TRAFFIC,
    HTC_VIVE_DISPLAY,
    DisplaySpec,
    VrTrafficModel,
    frame_schedule,
)


class TestDisplaySpec:
    def test_vive_raw_rate_multi_gbps(self):
        # 2160x1200 @ 90 Hz @ 24 bpp = 5.6 Gbps raw.
        assert HTC_VIVE_DISPLAY.raw_rate_mbps == pytest.approx(5598.7, abs=1.0)

    def test_bits_per_frame(self):
        assert HTC_VIVE_DISPLAY.bits_per_frame == pytest.approx(
            2160 * 1200 * 24
        )

    def test_validation(self):
        with pytest.raises(TypeError):
            DisplaySpec(width_px=1.5, height_px=100, refresh_hz=90.0)
        with pytest.raises(ValueError):
            DisplaySpec(width_px=100, height_px=100, refresh_hz=0.0)


class TestVrTrafficModel:
    def test_required_rate_near_4gbps(self):
        # The paper's Fig. 3 "required data-rate" line sits around 4 Gbps.
        assert DEFAULT_TRAFFIC.required_rate_mbps == pytest.approx(4000.0, abs=150.0)

    def test_frame_interval_90hz(self):
        assert DEFAULT_TRAFFIC.frame_interval_s == pytest.approx(1.0 / 90.0)

    def test_airtime_scales_inverse_with_rate(self):
        t1 = DEFAULT_TRAFFIC.frame_airtime_s(4000.0)
        t2 = DEFAULT_TRAFFIC.frame_airtime_s(8000.0)
        assert t1 == pytest.approx(2.0 * t2)

    def test_airtime_infinite_when_down(self):
        assert DEFAULT_TRAFFIC.frame_airtime_s(0.0) == float("inf")

    def test_deadline_met_at_required_rate(self):
        # By construction: the required rate delivers a frame within a
        # frame interval; the 10 ms deadline is slightly tighter.
        rate = DEFAULT_TRAFFIC.required_rate_mbps
        airtime = DEFAULT_TRAFFIC.frame_airtime_s(rate)
        assert airtime <= DEFAULT_TRAFFIC.frame_interval_s

    def test_deadline_missed_at_low_rate(self):
        assert not DEFAULT_TRAFFIC.frame_meets_deadline(1000.0)

    def test_deadline_met_at_max_80211ad(self):
        assert DEFAULT_TRAFFIC.frame_meets_deadline(6756.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VrTrafficModel(frame_deadline_s=0.0)
        with pytest.raises(ValueError):
            VrTrafficModel(packing_efficiency=0.0)


class TestFrameSchedule:
    def test_count_and_spacing(self):
        frames = frame_schedule(DEFAULT_TRAFFIC, duration_s=1.0)
        assert len(frames) == 90
        assert frames[1].emit_time_s - frames[0].emit_time_s == pytest.approx(
            1.0 / 90.0
        )

    def test_frame_deadline(self):
        frames = frame_schedule(DEFAULT_TRAFFIC, duration_s=0.1)
        f = frames[0]
        assert f.deadline_s(DEFAULT_TRAFFIC) == pytest.approx(
            f.emit_time_s + 0.010
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            frame_schedule(DEFAULT_TRAFFIC, duration_s=0.0)
