"""Unit tests for the headset and console nodes."""

import pytest

from repro.geometry.mobility import PoseSample
from repro.geometry.vectors import Vec2, bearing_deg
from repro.vr.console import ConsoleSpec, corner_console
from repro.vr.headset import RECEIVER_MOUNT_OFFSET_M, Headset


class TestHeadset:
    def make(self, x=2.0, y=2.0, yaw=0.0):
        return Headset(PoseSample(time_s=0.0, position=Vec2(x, y), yaw_deg=yaw))

    def test_receiver_mounted_forward(self):
        headset = self.make(yaw=0.0)
        assert headset.receiver_position.x == pytest.approx(
            2.0 + RECEIVER_MOUNT_OFFSET_M
        )
        assert headset.position == Vec2(2.0, 2.0)

    def test_update_pose_moves_receiver(self):
        headset = self.make()
        headset.update_pose(PoseSample(1.0, Vec2(3.0, 3.0), 90.0))
        assert headset.receiver_position.x == pytest.approx(3.0, abs=1e-9)
        assert headset.receiver_position.y == pytest.approx(
            3.0 + RECEIVER_MOUNT_OFFSET_M
        )
        assert headset.yaw_deg == 90.0
        assert headset.radio.boresight_deg == 90.0

    def test_rate_requirement(self):
        headset = self.make()
        assert headset.required_rate_mbps == pytest.approx(4000.0, abs=150.0)
        assert headset.link_supports_vr(6756.0)
        assert not headset.link_supports_vr(2000.0)

    def test_radio_has_panel_coverage(self):
        headset = self.make()
        for azimuth in (-170.0, -90.0, 0.0, 90.0, 170.0):
            assert headset.radio.array.can_steer_to(azimuth)


class TestConsole:
    def test_corner_console_faces_room(self):
        console = corner_console()
        expected = bearing_deg(Vec2(0.3, 0.3), Vec2(2.5, 2.5))
        assert console.ap.boresight_deg == pytest.approx(expected)

    def test_aim_at(self):
        console = corner_console()
        achieved = console.aim_at(Vec2(2.5, 2.5))
        assert achieved == pytest.approx(45.0)

    def test_bearing_to(self):
        console = corner_console()
        assert console.bearing_to(Vec2(0.3, 5.0)) == pytest.approx(90.0)

    def test_render_latency_inside_frame_budget(self):
        assert ConsoleSpec().render_latency_s < 0.010
