"""Unit tests for decibel-domain arithmetic."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.db import (
    amplitude_ratio_to_db,
    db_mean_power,
    db_sum_powers,
    db_to_amplitude_ratio,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    watts_to_dbm,
)


class TestConversions:
    def test_db_to_linear_known_values(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(-10.0) == pytest.approx(0.1)
        assert db_to_linear(3.0) == pytest.approx(1.995, abs=0.01)

    def test_linear_to_db_known_values(self):
        assert linear_to_db(1.0) == pytest.approx(0.0)
        assert linear_to_db(100.0) == pytest.approx(20.0)
        assert linear_to_db(0.5) == pytest.approx(-3.01, abs=0.01)

    def test_linear_to_db_zero_is_minus_inf(self):
        assert linear_to_db(0.0) == -math.inf

    def test_linear_to_db_negative_is_minus_inf(self):
        assert linear_to_db(-5.0) == -math.inf

    def test_dbm_watts_known_values(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert watts_to_dbm(1.0) == pytest.approx(30.0)
        assert watts_to_dbm(1e-3) == pytest.approx(0.0)

    def test_amplitude_uses_20log(self):
        assert amplitude_ratio_to_db(10.0) == pytest.approx(20.0)
        assert db_to_amplitude_ratio(20.0) == pytest.approx(10.0)
        assert db_to_amplitude_ratio(6.0) == pytest.approx(1.995, abs=0.01)

    def test_array_inputs(self):
        arr = np.array([0.0, 10.0, 20.0])
        out = db_to_linear(arr)
        np.testing.assert_allclose(out, [1.0, 10.0, 100.0])
        back = linear_to_db(out)
        np.testing.assert_allclose(back, arr)

    def test_array_with_zeros(self):
        out = linear_to_db(np.array([1.0, 0.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == -math.inf

    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_power_round_trip(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(
            value_db, abs=1e-9
        )

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_dbm_round_trip(self, value_dbm):
        assert watts_to_dbm(dbm_to_watts(value_dbm)) == pytest.approx(
            value_dbm, abs=1e-9
        )

    @given(st.floats(min_value=-150.0, max_value=150.0))
    def test_amplitude_round_trip(self, value_db):
        assert amplitude_ratio_to_db(db_to_amplitude_ratio(value_db)) == pytest.approx(
            value_db, abs=1e-9
        )


class TestDbSumPowers:
    def test_two_equal_powers_gain_3db(self):
        assert db_sum_powers([10.0, 10.0]) == pytest.approx(13.0103, abs=1e-3)

    def test_dominant_term_wins(self):
        # A power 30 dB below another adds ~0.004 dB.
        assert db_sum_powers([0.0, -30.0]) == pytest.approx(0.0043, abs=1e-3)

    def test_ignores_minus_inf(self):
        assert db_sum_powers([5.0, -math.inf]) == pytest.approx(5.0)

    def test_empty_is_dark(self):
        assert db_sum_powers([]) == -math.inf

    def test_all_dark_is_dark(self):
        assert db_sum_powers([-math.inf, -math.inf]) == -math.inf

    @given(st.lists(st.floats(min_value=-100.0, max_value=100.0), min_size=1, max_size=8))
    def test_sum_at_least_max(self, powers):
        total = db_sum_powers(powers)
        assert total >= max(powers) - 1e-9

    @given(st.lists(st.floats(min_value=-100.0, max_value=100.0), min_size=1, max_size=8))
    def test_sum_at_most_max_plus_10logn(self, powers):
        total = db_sum_powers(powers)
        bound = max(powers) + 10.0 * math.log10(len(powers))
        assert total <= bound + 1e-9

    @given(
        st.lists(st.floats(min_value=-80.0, max_value=80.0), min_size=2, max_size=6),
        st.integers(min_value=0, max_value=5),
    )
    def test_sum_is_permutation_invariant(self, powers, rotation):
        rotated = powers[rotation % len(powers):] + powers[: rotation % len(powers)]
        assert db_sum_powers(rotated) == pytest.approx(db_sum_powers(powers), abs=1e-9)


class TestDbMeanPower:
    def test_equal_values_mean_is_value(self):
        assert db_mean_power([7.0, 7.0, 7.0]) == pytest.approx(7.0)

    def test_linear_domain_mean(self):
        # mean of 10 dB (10x) and -inf (0x) is 5x = ~7 dB.
        assert db_mean_power([10.0, -math.inf]) == pytest.approx(6.9897, abs=1e-3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            db_mean_power([])

    def test_all_dark(self):
        assert db_mean_power([-math.inf]) == -math.inf

    @given(st.lists(st.floats(min_value=-60.0, max_value=60.0), min_size=1, max_size=10))
    def test_mean_between_min_and_max(self, powers):
        mean = db_mean_power(powers)
        assert min(powers) - 1e-9 <= mean <= max(powers) + 1e-9
