"""Unit tests for the text-mode visualizers."""

import numpy as np
import pytest

from repro.geometry.bodies import hand_occluder
from repro.geometry.room import rectangular_room, standard_office
from repro.geometry.vectors import Vec2
from repro.phy.antenna import PhasedArray
from repro.utils.stats import EmpiricalCdf
from repro.viz import (
    render_beam_pattern,
    render_cdf,
    render_floor_plan,
    render_snr_sweep,
)


class TestFloorPlan:
    def test_markers_visible(self):
        plan = render_floor_plan(
            rectangular_room(5.0, 5.0),
            markers=[("A", Vec2(0.3, 0.3)), ("H", Vec2(3.0, 3.0))],
        )
        assert "A" in plan and "H" in plan

    def test_walls_drawn(self):
        plan = render_floor_plan(rectangular_room(5.0, 5.0))
        assert "." in plan
        assert plan.startswith("+")

    def test_furniture_rendered(self):
        plan = render_floor_plan(standard_office())
        assert "#" in plan  # desk/cabinet boxes
        assert "=" in plan  # the whiteboard fixture

    def test_occluder_symbols(self):
        plan = render_floor_plan(
            rectangular_room(5.0, 5.0),
            extra_occluders=[hand_occluder(Vec2(2.5, 2.5), 0.0)],
        )
        assert "o" in plan

    def test_marker_positions_roughly_correct(self):
        plan = render_floor_plan(
            rectangular_room(5.0, 5.0),
            markers=[("A", Vec2(0.3, 0.3))],
            width_chars=40,
        )
        lines = plan.splitlines()
        # The AP is in the south-west corner: near the bottom-left.
        row = next(i for i, line in enumerate(lines) if "A" in line)
        assert row > len(lines) * 0.6
        assert lines[row].index("A") < 8

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_floor_plan(rectangular_room(5.0, 5.0), width_chars=2)


class TestBeamPattern:
    def test_renders_bars(self):
        arr = PhasedArray(boresight_deg=0.0)
        text = render_beam_pattern(arr.pattern(steer_deg=0.0, resolution_deg=5.0))
        assert "dBi" in text
        assert "#" in text

    def test_peak_has_longest_bar(self):
        arr = PhasedArray(boresight_deg=0.0)
        text = render_beam_pattern(
            arr.pattern(steer_deg=0.0, resolution_deg=10.0)
        )
        lines = text.splitlines()
        lengths = {line.split("deg")[0].strip(): line.count("#") for line in lines}
        peak_len = max(lengths.values())
        assert lengths.get("0.0", 0) == peak_len

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            render_beam_pattern(np.zeros((4, 3)))


class TestCdf:
    def test_monotone_bars(self):
        cdf = EmpiricalCdf.from_samples(list(range(100)))
        text = render_cdf(cdf, label="test")
        lines = text.splitlines()
        assert lines[0] == "CDF test"
        bar_lengths = [line.count("#") for line in lines[1:]]
        assert bar_lengths == sorted(bar_lengths)

    def test_constant_samples(self):
        cdf = EmpiricalCdf.from_samples([5.0, 5.0, 5.0])
        text = render_cdf(cdf)
        assert "5.00" in text

    def test_rows_validated(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0])
        with pytest.raises(ValueError):
            render_cdf(cdf, num_rows=1)


class TestSnrSweep:
    def test_threshold_markers(self):
        text = render_snr_sweep(
            [0.0, 10.0, 20.0], [5.0, 15.0, 25.0], threshold_db=13.0
        )
        assert "[--]" in text
        assert "[ok]" in text

    def test_no_threshold(self):
        text = render_snr_sweep([0.0, 10.0], [5.0, 15.0])
        assert "[ok]" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_snr_sweep([0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            render_snr_sweep([], [])
