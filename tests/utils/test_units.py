"""Unit tests for physical constants and angle helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.units import (
    MOVR_CARRIER_HZ,
    angle_difference_deg,
    deg_to_rad,
    rad_to_deg,
    thermal_noise_dbm,
    wavelength,
    wrap_angle_deg,
)


class TestWavelength:
    def test_24ghz_is_12_5mm(self):
        assert wavelength(24.0e9) * 1000.0 == pytest.approx(12.49, abs=0.01)

    def test_60ghz_is_5mm(self):
        assert wavelength(60.0e9) * 1000.0 == pytest.approx(5.0, abs=0.01)

    def test_movr_carrier(self):
        assert wavelength(MOVR_CARRIER_HZ) == pytest.approx(0.01249, abs=1e-4)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)
        with pytest.raises(ValueError):
            wavelength(-1.0)


class TestThermalNoise:
    def test_1hz_reference(self):
        # kT at 290 K is -174 dBm/Hz.
        assert thermal_noise_dbm(1.0) == pytest.approx(-173.98, abs=0.05)

    def test_80211ad_channel(self):
        assert thermal_noise_dbm(2.16e9) == pytest.approx(-80.6, abs=0.2)

    def test_scales_with_bandwidth(self):
        assert thermal_noise_dbm(2e9) - thermal_noise_dbm(2e8) == pytest.approx(
            10.0, abs=1e-6
        )

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)


class TestAngles:
    def test_deg_rad_round_trip(self):
        assert rad_to_deg(deg_to_rad(123.4)) == pytest.approx(123.4)

    def test_wrap_examples(self):
        assert wrap_angle_deg(270.0) == pytest.approx(-90.0)
        assert wrap_angle_deg(-190.0) == pytest.approx(170.0)
        assert wrap_angle_deg(180.0) == pytest.approx(-180.0)
        assert wrap_angle_deg(0.0) == pytest.approx(0.0)

    def test_difference_wraps_the_short_way(self):
        assert angle_difference_deg(10.0, 350.0) == pytest.approx(20.0)
        assert angle_difference_deg(350.0, 10.0) == pytest.approx(-20.0)

    @given(st.floats(min_value=-1e4, max_value=1e4))
    def test_wrap_range(self, angle):
        wrapped = wrap_angle_deg(angle)
        assert -180.0 <= wrapped < 180.0

    @given(st.floats(min_value=-720.0, max_value=720.0))
    def test_wrap_preserves_angle_modulo_360(self, angle):
        wrapped = wrap_angle_deg(angle)
        assert math.cos(deg_to_rad(angle)) == pytest.approx(
            math.cos(deg_to_rad(wrapped)), abs=1e-9
        )
        assert math.sin(deg_to_rad(angle)) == pytest.approx(
            math.sin(deg_to_rad(wrapped)), abs=1e-9
        )

    @given(
        st.floats(min_value=-360.0, max_value=360.0),
        st.floats(min_value=-360.0, max_value=360.0),
    )
    def test_difference_antisymmetric(self, a, b):
        d1 = angle_difference_deg(a, b)
        d2 = angle_difference_deg(b, a)
        # Antisymmetric modulo the -180 edge case.
        if abs(d1) != 180.0:
            assert d1 == pytest.approx(-d2, abs=1e-9)
