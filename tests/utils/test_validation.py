"""Unit tests for argument validation helpers."""

import math

import pytest

from repro.utils.validation import (
    require_finite,
    require_in_range,
    require_int,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(1.5, "x") == 1.5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(0.0, "x")
        with pytest.raises(ValueError):
            require_positive(-1.0, "x")

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            require_positive(math.nan, "x")
        with pytest.raises(ValueError):
            require_positive(math.inf, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")


class TestRequireFinite:
    def test_coerces_to_float(self):
        assert require_finite(3, "x") == 3.0
        assert isinstance(require_finite(3, "x"), float)

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            require_finite("hello", "x")

    def test_error_names_the_argument(self):
        with pytest.raises(ValueError, match="snr"):
            require_finite(math.inf, "snr")


class TestRequireInRange:
    def test_accepts_bounds(self):
        assert require_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert require_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(1.01, 0.0, 1.0, "x")

    def test_probability_alias(self):
        assert require_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            require_probability(2.0, "p")


class TestRequireInt:
    def test_accepts_int(self):
        assert require_int(4, "n") == 4

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_int(True, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_int(4.0, "n")

    def test_minimum_enforced(self):
        with pytest.raises(ValueError):
            require_int(0, "n", minimum=1)
