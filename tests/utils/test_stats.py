"""Unit tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import EmpiricalCdf, RunningStats, SummaryStats

samples_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50
)


class TestEmpiricalCdf:
    def test_values_sorted(self):
        cdf = EmpiricalCdf.from_samples([3.0, 1.0, 2.0])
        assert list(cdf.values) == [1.0, 2.0, 3.0]

    def test_probabilities_end_at_one(self):
        cdf = EmpiricalCdf.from_samples([5.0, 1.0])
        assert cdf.probabilities[-1] == pytest.approx(1.0)

    def test_evaluate_below_min_is_zero(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0])
        assert cdf.evaluate(0.5) == 0.0

    def test_evaluate_at_max_is_one(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0])
        assert cdf.evaluate(2.0) == 1.0

    def test_evaluate_midpoint(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(2.5) == pytest.approx(0.5)

    def test_median_and_extremes(self):
        cdf = EmpiricalCdf.from_samples([10.0, 20.0, 30.0])
        assert cdf.median == pytest.approx(20.0)
        assert cdf.minimum == 10.0
        assert cdf.maximum == 30.0

    def test_fraction_below(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(3.0) == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            EmpiricalCdf.from_samples([])

    def test_bad_quantile_raises(self):
        cdf = EmpiricalCdf.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(1.5)

    def test_series_downsamples(self):
        cdf = EmpiricalCdf.from_samples(list(range(100)))
        series = cdf.series(num_points=10)
        assert len(series) <= 10
        assert series[0][0] == 0.0
        assert series[-1][0] == 99.0

    def test_series_rejects_single_point(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0])
        with pytest.raises(ValueError):
            cdf.series(num_points=1)

    @given(samples_strategy)
    def test_probabilities_monotone(self, samples):
        cdf = EmpiricalCdf.from_samples(samples)
        assert np.all(np.diff(cdf.probabilities) >= 0.0)
        assert np.all(np.diff(cdf.values) >= 0.0)

    @given(samples_strategy, st.floats(min_value=-1e6, max_value=1e6))
    def test_evaluate_matches_count(self, samples, x):
        cdf = EmpiricalCdf.from_samples(samples)
        expected = sum(1 for s in samples if s <= x) / len(samples)
        assert cdf.evaluate(x) == pytest.approx(expected)


class TestSummaryStats:
    def test_known_values(self):
        stats = SummaryStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SummaryStats.from_samples([])

    def test_as_row_keys(self):
        row = SummaryStats.from_samples([1.0]).as_row()
        assert set(row) == {"count", "mean", "std", "min", "p25", "median", "p75", "max"}

    @given(samples_strategy)
    def test_ordering_invariants(self, samples):
        stats = SummaryStats.from_samples(samples)
        assert stats.minimum <= stats.p25 <= stats.median <= stats.p75 <= stats.maximum
        # Tolerance: summing floats can put the mean 1 ulp outside.
        span = max(1e-9, abs(stats.maximum) * 1e-12)
        assert stats.minimum - span <= stats.mean <= stats.maximum + span


class TestRunningStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 2.0, 500)
        running = RunningStats()
        for x in data:
            running.push(float(x))
        assert running.mean == pytest.approx(float(np.mean(data)), rel=1e-9)
        assert running.std == pytest.approx(float(np.std(data, ddof=1)), rel=1e-6)
        assert running.minimum == pytest.approx(float(np.min(data)))
        assert running.maximum == pytest.approx(float(np.max(data)))

    def test_single_sample(self):
        running = RunningStats()
        running.push(3.0)
        assert running.mean == 3.0
        assert running.variance == 0.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            RunningStats().mean

    @given(samples_strategy)
    def test_count_tracks_pushes(self, samples):
        running = RunningStats()
        for s in samples:
            running.push(s)
        assert running.count == len(samples)
