"""Unit tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, child_rng, make_rng, spawn_streams


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None)
        b = make_rng(DEFAULT_SEED)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_int_seed_deterministic(self):
        assert make_rng(7).integers(0, 1 << 30) == make_rng(7).integers(0, 1 << 30)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 1 << 30, 8)
        draws_b = make_rng(2).integers(0, 1 << 30, 8)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen


class TestChildRng:
    def test_deterministic_given_parent_state(self):
        a = child_rng(make_rng(5), 0).integers(0, 1 << 30)
        b = child_rng(make_rng(5), 0).integers(0, 1 << 30)
        assert a == b

    def test_stream_ids_differ(self):
        parent = make_rng(5)
        a = child_rng(parent, 0)
        parent2 = make_rng(5)
        b = child_rng(parent2, 1)
        assert a.integers(0, 1 << 30) != b.integers(0, 1 << 30)

    def test_negative_stream_id_rejected(self):
        with pytest.raises(ValueError):
            child_rng(make_rng(0), -1)


class TestSpawnStreams:
    def test_count(self):
        assert len(spawn_streams(1, 5)) == 5

    def test_streams_independent_of_count(self):
        # Stream i must not change when more streams are requested.
        few = spawn_streams(9, 2)
        many = spawn_streams(9, 6)
        assert few[1].integers(0, 1 << 30) == many[1].integers(0, 1 << 30)

    def test_streams_differ_from_each_other(self):
        streams = spawn_streams(4, 3)
        draws = [s.integers(0, 1 << 30) for s in streams]
        assert len(set(draws)) == 3

    def test_zero_count(self):
        assert spawn_streams(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_streams(1, -1)

    def test_none_seed_supported(self):
        streams = spawn_streams(None, 2)
        assert len(streams) == 2
