"""Unit tests for SINR analysis."""

import math

import pytest

from repro.geometry.raytrace import RayTracer
from repro.geometry.room import rectangular_room
from repro.geometry.vectors import Vec2
from repro.link.budget import LinkBudget
from repro.link.interference import InterferenceAnalyzer, sinr_db
from repro.link.radios import HEADSET_RADIO_CONFIG, Radio
from repro.phy.channel import MmWaveChannel


class TestSinrDb:
    def test_no_interference_is_snr(self):
        assert sinr_db(-40.0, -math.inf, -70.0) == pytest.approx(30.0)

    def test_equal_interference_and_noise_cost_3db(self):
        assert sinr_db(-40.0, -70.0, -70.0) == pytest.approx(26.99, abs=0.01)

    def test_strong_interference_dominates(self):
        assert sinr_db(-40.0, -45.0, -70.0) == pytest.approx(5.0, abs=0.1)

    def test_dark_signal(self):
        assert sinr_db(-math.inf, -60.0, -70.0) == -math.inf


@pytest.fixture(scope="module")
def scene():
    room = rectangular_room(5.0, 5.0)
    budget = LinkBudget(RayTracer(room), MmWaveChannel(shadowing_sigma_db=0.0))
    return budget, InterferenceAnalyzer(budget)


class TestInterferenceAnalyzer:
    def test_isolated_geometry_small_penalty(self, scene):
        budget, analyzer = scene
        # Two links pointing away from each other.
        ap1 = Radio(Vec2(0.3, 0.3), boresight_deg=45.0, name="ap1")
        hs1 = Radio(Vec2(1.5, 1.5), boresight_deg=0.0, config=HEADSET_RADIO_CONFIG)
        ap2 = Radio(Vec2(4.7, 4.7), boresight_deg=-135.0, name="ap2")
        ap1.point_at(hs1.position)
        hs1.point_at(ap1.position)
        ap2.point_at(Vec2(3.5, 3.5))  # serving someone far away
        m = analyzer.victim_sinr(ap1, hs1, interferers=[ap2])
        assert m.interference_penalty_db < 1.0
        assert m.sinr_db > 20.0

    def test_inline_geometry_large_penalty(self, scene):
        budget, analyzer = scene
        # The interferer sits behind the serving AP, beaming at a
        # target just past the victim: the victim's receive beam stares
        # straight into the interferer's beam.
        ap1 = Radio(Vec2(0.3, 2.5), boresight_deg=0.0, name="ap1")
        hs1 = Radio(Vec2(2.5, 2.5), boresight_deg=0.0, config=HEADSET_RADIO_CONFIG)
        ap2 = Radio(Vec2(0.8, 2.5), boresight_deg=0.0, name="ap2")
        ap1.point_at(hs1.position)
        hs1.point_at(ap1.position)
        ap2.point_at(Vec2(3.2, 2.5))
        m = analyzer.victim_sinr(ap1, hs1, interferers=[ap2])
        assert m.interference_limited
        assert m.interference_penalty_db > 3.0
        assert m.sinr_db < m.snr_db

    def test_no_interferers(self, scene):
        budget, analyzer = scene
        ap1 = Radio(Vec2(0.3, 0.3), boresight_deg=45.0)
        hs1 = Radio(Vec2(2.5, 2.5), boresight_deg=0.0, config=HEADSET_RADIO_CONFIG)
        ap1.point_at(hs1.position)
        hs1.point_at(ap1.position)
        m = analyzer.victim_sinr(ap1, hs1, interferers=[])
        assert m.sinr_db == pytest.approx(m.snr_db)
        assert m.interference_penalty_db == pytest.approx(0.0)

    def test_two_interferers_add(self, scene):
        budget, analyzer = scene
        ap1 = Radio(Vec2(0.3, 2.5), boresight_deg=0.0)
        hs1 = Radio(Vec2(2.5, 2.5), boresight_deg=0.0, config=HEADSET_RADIO_CONFIG)
        intf_a = Radio(Vec2(0.8, 2.5), boresight_deg=0.0, name="a")
        intf_b = Radio(Vec2(1.0, 2.5), boresight_deg=0.0, name="b")
        for radio in (intf_a, intf_b):
            radio.point_at(Vec2(3.2, 2.5))
        ap1.point_at(hs1.position)
        hs1.point_at(ap1.position)
        one = analyzer.victim_sinr(ap1, hs1, interferers=[intf_a])
        two = analyzer.victim_sinr(ap1, hs1, interferers=[intf_a, intf_b])
        assert two.sinr_db < one.sinr_db
