"""Unit tests for the discrete-event simulation core."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.link.events import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda s: order.append("b"))
        sim.schedule(1.0, lambda s: order.append("a"))
        sim.schedule(3.0, lambda s: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(1.0, lambda s, l=label: order.append(l))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [1.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda s: None)
        with pytest.raises(ValueError):
            sim.schedule(math.nan, lambda s: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [2.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda s: None)

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        order = []

        def first(s):
            order.append("first")
            s.schedule(1.0, lambda s2: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, lambda s: seen.append("x"))
        handle.cancel()
        sim.run()
        assert seen == []
        assert handle.cancelled

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        handle = sim.schedule(2.0, lambda s: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda s: seen.append(1))
        sim.schedule(3.0, lambda s: seen.append(3))
        sim.run_until(2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run_until(4.0)
        assert seen == [1, 3]

    def test_boundary_inclusive(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda s: seen.append(2))
        sim.run_until(2.0)
        assert seen == [2]

    def test_past_end_time_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.run_until(1.0)


class TestPeriodic:
    def test_fires_at_period(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(0.5, lambda s: times.append(s.now))
        sim.run_until(2.0)
        assert times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])

    def test_stop_function(self):
        sim = Simulator()
        times = []
        stop = sim.schedule_periodic(1.0, lambda s: times.append(s.now))
        sim.schedule(2.5, lambda s: stop())
        sim.run_until(10.0)
        assert times == pytest.approx([0.0, 1.0, 2.0])

    def test_bad_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_periodic(0.0, lambda s: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        sim.run()
        assert sim.events_processed == 2


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    def test_arbitrary_delays_processed_in_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda s: fired.append(s.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
