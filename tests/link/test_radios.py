"""Unit tests for radio node models."""

import pytest

from repro.geometry.vectors import Vec2
from repro.link.radios import (
    DEFAULT_RADIO_CONFIG,
    HEADSET_RADIO_CONFIG,
    Radio,
    RadioConfig,
)
from repro.phy.antenna import MultiPanelArray, PhasedArray


class TestRadioConfig:
    def test_noise_floor(self):
        # kTB(2.16 GHz) = -80.6 dBm + 8 dB NF.
        assert DEFAULT_RADIO_CONFIG.noise_floor_dbm == pytest.approx(-72.6, abs=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioConfig(noise_figure_db=-1.0)
        with pytest.raises(ValueError):
            RadioConfig(implementation_loss_db=-1.0)

    def test_headset_config_is_multi_panel(self):
        assert HEADSET_RADIO_CONFIG.array.num_panels == 3


class TestRadio:
    def test_single_panel_array_type(self):
        radio = Radio(Vec2(0, 0), boresight_deg=0.0)
        assert isinstance(radio.array, PhasedArray)

    def test_headset_radio_multi_panel(self):
        radio = Radio(Vec2(0, 0), boresight_deg=0.0, config=HEADSET_RADIO_CONFIG)
        assert isinstance(radio.array, MultiPanelArray)

    def test_point_at(self):
        radio = Radio(Vec2(0, 0), boresight_deg=45.0)
        achieved = radio.point_at(Vec2(1, 1))
        assert achieved == pytest.approx(45.0)

    def test_steer_clipping(self):
        radio = Radio(Vec2(0, 0), boresight_deg=0.0)
        achieved = radio.steer_to(100.0)
        assert achieved == pytest.approx(radio.config.array.max_scan_deg)

    def test_eirp(self):
        radio = Radio(Vec2(0, 0), boresight_deg=0.0)
        radio.steer_to(0.0)
        expected = radio.config.tx_power_dbm + radio.config.array.boresight_gain_dbi
        assert radio.eirp_dbm(0.0) == pytest.approx(expected)

    def test_boresight_rotation_preserves_steering(self):
        radio = Radio(Vec2(0, 0), boresight_deg=0.0)
        radio.steer_to(30.0)
        radio.boresight_deg = 20.0
        assert radio.steering_deg == pytest.approx(30.0)

    def test_boresight_rotation_resets_unreachable_steering(self):
        radio = Radio(Vec2(0, 0), boresight_deg=0.0)
        radio.steer_to(50.0)
        radio.boresight_deg = -130.0
        # 50 degrees absolute is now unreachable; beam recentred.
        assert radio.steering_deg == pytest.approx(-130.0)

    def test_moved_to_copies(self):
        radio = Radio(Vec2(0, 0), boresight_deg=10.0, name="a")
        clone = radio.moved_to(Vec2(1, 1))
        assert clone.position == Vec2(1, 1)
        assert clone.boresight_deg == 10.0
        assert clone.name == "a"
        assert clone is not radio

    def test_repr_contains_name(self):
        radio = Radio(Vec2(0, 0), boresight_deg=0.0, name="ap-1")
        assert "ap-1" in repr(radio)
