"""Unit tests for the link-budget engine."""

import math

import pytest

from repro.geometry.bodies import hand_occluder
from repro.geometry.raytrace import RayTracer
from repro.geometry.room import rectangular_room
from repro.geometry.vectors import Vec2, bearing_deg
from repro.link.budget import LinkBudget, LinkMeasurement
from repro.link.radios import Radio
from repro.phy.channel import MmWaveChannel


@pytest.fixture
def setup():
    room = rectangular_room(5.0, 5.0)
    tracer = RayTracer(room)
    budget = LinkBudget(tracer, MmWaveChannel())
    tx = Radio(Vec2(0.5, 0.5), boresight_deg=45.0, name="tx")
    rx = Radio(Vec2(4.0, 4.0), boresight_deg=-135.0, name="rx")
    return budget, tx, rx


class TestMeasure:
    def test_aligned_beats_misaligned(self, setup):
        budget, tx, rx = setup
        los = budget.tracer.line_of_sight(tx.position, rx.position)
        aligned = budget.measure_aligned(tx, rx, los)
        misaligned = budget.measure(
            tx, rx, tx_steer_deg=los.departure_angle_deg + 30.0,
            rx_steer_deg=los.arrival_angle_deg + 30.0,
        )
        assert aligned.snr_db > misaligned.snr_db

    def test_los_dominant_when_aligned(self, setup):
        budget, tx, rx = setup
        los = budget.tracer.line_of_sight(tx.position, rx.position)
        m = budget.measure_aligned(tx, rx, los)
        assert m.dominant_path is not None
        assert m.dominant_path.is_line_of_sight

    def test_blockage_reduces_snr(self, setup):
        budget, tx, rx = setup
        los = budget.tracer.line_of_sight(tx.position, rx.position)
        clear = budget.measure_aligned(tx, rx, los)
        hand = hand_occluder(rx.position, bearing_deg(rx.position, tx.position))
        blocked = budget.measure_aligned(tx, rx, los, extra_occluders=[hand])
        assert blocked.snr_db < clear.snr_db - 8.0

    def test_budget_form(self, setup):
        """Received power decomposes into the textbook terms."""
        budget, tx, rx = setup
        los = budget.tracer.line_of_sight(tx.position, rx.position)
        power = budget.path_rx_power_dbm(
            tx, rx, los,
            tx_steer_deg=los.departure_angle_deg,
            rx_steer_deg=los.arrival_angle_deg,
        )
        expected = (
            tx.config.tx_power_dbm
            + tx.tx_gain_dbi(los.departure_angle_deg,
                             steer_override_deg=los.departure_angle_deg)
            + rx.rx_gain_dbi(los.arrival_angle_deg,
                             steer_override_deg=los.arrival_angle_deg)
            + budget.channel.path_gain_db(los)
            - tx.config.implementation_loss_db
        )
        assert power == pytest.approx(expected)

    def test_measure_with_paths_matches_measure(self, setup):
        budget, tx, rx = setup
        paths = budget.tracer.all_paths(tx.position, rx.position)
        a = budget.measure(tx, rx, 45.0, -135.0)
        b = budget.measure_with_paths(tx, rx, paths, 45.0, -135.0)
        assert a.snr_db == pytest.approx(b.snr_db)
        assert a.received_power_dbm == pytest.approx(b.received_power_dbm)


class TestBestAlignment:
    def test_includes_los_by_default(self, setup):
        budget, tx, rx = setup
        best = budget.best_alignment(tx, rx)
        assert best.dominant_path.is_line_of_sight

    def test_exclude_los_forces_reflection(self, setup):
        budget, tx, rx = setup
        best = budget.best_alignment(tx, rx, include_los=False)
        assert not best.dominant_path.is_line_of_sight
        assert best.snr_db < budget.best_alignment(tx, rx).snr_db

    def test_opt_nlos_weaker_than_los(self, setup):
        budget, tx, rx = setup
        los = budget.best_alignment(tx, rx).snr_db
        nlos = budget.best_alignment(tx, rx, include_los=False).snr_db
        # Reflection loss + longer path: several dB gap.
        assert los - nlos > 5.0

    def test_empty_path_set_is_outage(self, setup):
        budget, tx, rx = setup
        # A single-bounce-only query in a room with all paths blocked
        # cannot happen geometrically, so exercise the guard directly.
        measurement = budget.best_alignment(tx, rx, include_los=False, max_bounces=1)
        assert isinstance(measurement, LinkMeasurement)


class TestLinkMeasurement:
    def test_outage_flag(self):
        m = LinkMeasurement(
            received_power_dbm=-math.inf,
            snr_db=-math.inf,
            dominant_path=None,
            tx_steer_deg=0.0,
            rx_steer_deg=0.0,
        )
        assert m.in_outage

    def test_not_outage(self, setup):
        budget, tx, rx = setup
        best = budget.best_alignment(tx, rx)
        assert not best.in_outage
