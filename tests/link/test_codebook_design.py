"""Unit tests for beam-codebook design."""

import pytest

from repro.link.codebook_design import (
    analyze_coverage,
    design_sector_codebook,
    search_cost_frames,
)
from repro.phy.antenna import MOVR_ARRAY, PhasedArray, PhasedArrayConfig


class TestDesign:
    def test_beams_inside_sector(self):
        codebook = design_sector_codebook(MOVR_ARRAY, -50.0, 50.0)
        assert all(-51.0 <= a <= 51.0 for a in codebook)

    def test_more_elements_need_more_beams(self):
        small = design_sector_codebook(PhasedArrayConfig(num_elements=8), -50.0, 50.0)
        large = design_sector_codebook(PhasedArrayConfig(num_elements=32), -50.0, 50.0)
        assert len(large) > len(small)

    def test_tighter_scalloping_needs_more_beams(self):
        loose = design_sector_codebook(MOVR_ARRAY, -50.0, 50.0, max_scalloping_db=3.0)
        tight = design_sector_codebook(MOVR_ARRAY, -50.0, 50.0, max_scalloping_db=0.5)
        assert len(tight) > len(loose)

    def test_narrow_sector_single_beam(self):
        codebook = design_sector_codebook(MOVR_ARRAY, -1.0, 1.0)
        assert len(codebook) == 1

    def test_sector_validation(self):
        with pytest.raises(ValueError):
            design_sector_codebook(MOVR_ARRAY, 50.0, -50.0)
        with pytest.raises(ValueError):
            design_sector_codebook(MOVR_ARRAY, -80.0, 80.0)  # beyond scan

    def test_boresight_offset(self):
        codebook = design_sector_codebook(
            MOVR_ARRAY, 40.0, 140.0, boresight_deg=90.0
        )
        assert all(39.0 <= a <= 141.0 for a in codebook)


class TestCoverage:
    def test_designed_codebook_meets_scalloping_target(self):
        array = PhasedArray(MOVR_ARRAY, boresight_deg=0.0)
        codebook = design_sector_codebook(
            MOVR_ARRAY, -45.0, 45.0, max_scalloping_db=3.0
        )
        coverage = analyze_coverage(codebook, array, -45.0, 45.0)
        # The true pattern deviates a little from the design formula;
        # allow one extra dB of slack.
        assert coverage.scalloping_loss_db <= 3.0 + 4.0
        # The worst-covered angle still has serious gain.
        assert coverage.worst_gain_dbi > MOVR_ARRAY.boresight_gain_dbi - 8.0

    def test_sparse_codebook_has_holes(self):
        from repro.link.beams import Codebook

        array = PhasedArray(MOVR_ARRAY, boresight_deg=0.0)
        sparse = Codebook((-40.0, 0.0, 40.0))
        dense = design_sector_codebook(MOVR_ARRAY, -45.0, 45.0)
        sparse_cov = analyze_coverage(sparse, array, -45.0, 45.0)
        dense_cov = analyze_coverage(dense, array, -45.0, 45.0)
        assert sparse_cov.worst_gain_dbi < dense_cov.worst_gain_dbi - 5.0

    def test_validation(self):
        array = PhasedArray(MOVR_ARRAY, boresight_deg=0.0)
        codebook = design_sector_codebook(MOVR_ARRAY, -10.0, 10.0)
        with pytest.raises(ValueError):
            analyze_coverage(codebook, array, 10.0, -10.0)


class TestSearchCost:
    def test_joint_vs_linear(self):
        assert search_cost_frames((10, 20), joint=True) == 200
        assert search_cost_frames((10, 20), joint=False) == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            search_cost_frames((0, 5), joint=True)

    def test_codebook_size_drives_search_cost(self):
        small = design_sector_codebook(PhasedArrayConfig(num_elements=8), -50.0, 50.0)
        large = design_sector_codebook(PhasedArrayConfig(num_elements=32), -50.0, 50.0)
        assert search_cost_frames((len(small), len(small)), True) < search_cost_frames(
            (len(large), len(large)), True
        )
