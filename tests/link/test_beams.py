"""Unit tests for beam codebooks and searches."""


import pytest

from repro.link.beams import (
    DEFAULT_PROBE_TIME_S,
    Codebook,
    SweepResult,
    exhaustive_joint_sweep,
    hierarchical_joint_sweep,
    single_sided_sweep,
)


def planted_peak_metric(peak_tx: float, peak_rx: float, width: float = 8.0):
    """A smooth unimodal metric peaking at (peak_tx, peak_rx)."""

    def metric(tx: float, rx: float) -> float:
        return -((tx - peak_tx) ** 2 + (rx - peak_rx) ** 2) / width

    return metric


class TestCodebook:
    def test_uniform_inclusive(self):
        cb = Codebook.uniform(40.0, 140.0, 1.0)
        assert len(cb) == 101
        assert cb.angles_deg[0] == 40.0
        assert cb.angles_deg[-1] == 140.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            Codebook.uniform(0.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            Codebook.uniform(10.0, 0.0, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Codebook(angles_deg=())

    def test_nearest(self):
        cb = Codebook.uniform(0.0, 10.0, 2.0)
        assert cb.nearest(5.1) == 6.0
        assert cb.nearest(-3.0) == 0.0


class TestExhaustiveSweep:
    def test_finds_planted_peak(self):
        tx_cb = Codebook.uniform(0.0, 100.0, 1.0)
        rx_cb = Codebook.uniform(0.0, 100.0, 1.0)
        result = exhaustive_joint_sweep(tx_cb, rx_cb, planted_peak_metric(37.0, 61.0))
        assert result.best_tx_deg == 37.0
        assert result.best_rx_deg == 61.0
        assert result.num_probes == 101 * 101

    def test_keep_map(self):
        tx_cb = Codebook.uniform(0.0, 10.0, 5.0)
        rx_cb = Codebook.uniform(0.0, 10.0, 5.0)
        result = exhaustive_joint_sweep(
            tx_cb, rx_cb, planted_peak_metric(5.0, 5.0), keep_map=True
        )
        assert result.metric_map.shape == (3, 3)
        assert result.metric_map.max() == result.best_metric

    def test_sweep_time(self):
        result = SweepResult(0.0, 0.0, 0.0, num_probes=1000)
        assert result.search_time_s() == pytest.approx(1000 * DEFAULT_PROBE_TIME_S)


class TestHierarchicalSweep:
    def test_finds_peak_cheaper(self):
        metric = planted_peak_metric(72.0, 72.0, width=50.0)
        exhaustive = exhaustive_joint_sweep(
            Codebook.uniform(40.0, 140.0, 1.0),
            Codebook.uniform(40.0, 140.0, 1.0),
            metric,
        )
        hierarchical = hierarchical_joint_sweep(40.0, 140.0, metric)
        assert hierarchical.num_probes < exhaustive.num_probes / 3
        assert abs(hierarchical.best_tx_deg - 72.0) <= 1.0
        assert abs(hierarchical.best_rx_deg - 72.0) <= 1.0

    def test_validation(self):
        metric = planted_peak_metric(50.0, 50.0)
        with pytest.raises(ValueError):
            hierarchical_joint_sweep(0.0, 100.0, metric, coarse_step_deg=0.0)
        with pytest.raises(ValueError):
            hierarchical_joint_sweep(
                0.0, 100.0, metric, coarse_step_deg=1.0, fine_step_deg=2.0
            )


class TestSingleSidedSweep:
    def test_finds_peak(self):
        cb = Codebook.uniform(0.0, 100.0, 1.0)
        angle, value, probes = single_sided_sweep(cb, lambda a: -abs(a - 33.0))
        assert angle == 33.0
        assert value == 0.0
        assert probes == 101

    def test_probe_count_matches_codebook(self):
        cb = Codebook.uniform(0.0, 10.0, 2.0)
        _, _, probes = single_sided_sweep(cb, lambda a: a)
        assert probes == len(cb)
