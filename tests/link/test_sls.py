"""Unit tests for the 802.11ad sector-level sweep baseline."""

import pytest

from repro.link.beams import Codebook
from repro.link.sls import (
    QUASI_OMNI_PENALTY_DB,
    SSW_FRAME_TIME_S,
    SlsResult,
    sector_level_sweep,
    sls_probe_count,
)


def planted_peak(tx_peak: float, rx_peak: float, height: float = 30.0):
    def metric(tx: float, rx: float) -> float:
        return height - 0.1 * ((tx - tx_peak) ** 2 + (rx - rx_peak) ** 2)

    return metric


class TestSectorLevelSweep:
    def test_finds_strong_peak(self):
        initiator = Codebook.uniform(0.0, 100.0, 5.0)
        responder = Codebook.uniform(0.0, 100.0, 5.0)
        result = sector_level_sweep(
            initiator, responder, planted_peak(40.0, 60.0), detection_floor_db=0.0
        )
        assert result.detected
        assert abs(result.initiator_sector_deg - 40.0) <= 5.0
        assert abs(result.responder_sector_deg - 60.0) <= 5.0

    def test_linear_probe_count(self):
        initiator = Codebook.uniform(0.0, 100.0, 5.0)
        responder = Codebook.uniform(0.0, 100.0, 10.0)
        result = sector_level_sweep(initiator, responder, planted_peak(50.0, 50.0))
        assert result.num_frames == len(initiator) + len(responder)

    def test_weak_link_missed(self):
        """A link that only closes with both beams aligned falls below
        the quasi-omni detection floor — the reflector-echo failure
        mode that motivates MoVR's modulated backscatter search."""
        initiator = Codebook.uniform(0.0, 100.0, 5.0)
        responder = Codebook.uniform(0.0, 100.0, 5.0)
        weak = planted_peak(40.0, 60.0, height=10.0)
        result = sector_level_sweep(initiator, responder, weak, detection_floor_db=0.0)
        assert not result.detected

    def test_quasi_omni_penalty_applied(self):
        # Height just above the floor + penalty: detected.  Just below:
        # missed.
        initiator = Codebook.uniform(40.0, 60.0, 5.0)
        responder = Codebook.uniform(40.0, 60.0, 5.0)
        just_above = planted_peak(50.0, 50.0, height=QUASI_OMNI_PENALTY_DB + 1.0)
        just_below = planted_peak(50.0, 50.0, height=QUASI_OMNI_PENALTY_DB - 1.0)
        assert sector_level_sweep(initiator, responder, just_above).detected
        assert not sector_level_sweep(initiator, responder, just_below).detected

    def test_sweep_time(self):
        result = SlsResult(0.0, 0.0, 0.0, num_frames=100, detected=True)
        assert result.sweep_time_s() == pytest.approx(100 * SSW_FRAME_TIME_S)


class TestProbeCount:
    def test_additive(self):
        assert sls_probe_count(121, 101) == 222

    def test_validation(self):
        with pytest.raises(ValueError):
            sls_probe_count(0, 10)
