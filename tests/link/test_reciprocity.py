"""Property tests on link-level physical invariants.

Channel reciprocity, budget monotonicity under blockage, and decision
consistency — checked over randomized geometry with hypothesis.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.geometry.bodies import hand_occluder
from repro.geometry.raytrace import RayTracer
from repro.geometry.room import rectangular_room
from repro.geometry.vectors import Vec2, bearing_deg
from repro.link.budget import LinkBudget
from repro.link.radios import DEFAULT_RADIO_CONFIG, Radio
from repro.phy.channel import MmWaveChannel

interior = st.floats(min_value=0.6, max_value=4.4)
points = st.builds(Vec2, interior, interior)


def make_budget():
    return LinkBudget(RayTracer(rectangular_room(5.0, 5.0)), MmWaveChannel())


class TestReciprocity:
    @settings(max_examples=20, deadline=None)
    @given(points, points)
    def test_aligned_link_is_reciprocal(self, a, b):
        """With identical radios, swapping TX and RX leaves the SNR
        unchanged — channel reciprocity survives the whole stack."""
        assume(a.distance_to(b) > 0.5)
        budget = make_budget()
        node_a = Radio(a, boresight_deg=bearing_deg(a, b), config=DEFAULT_RADIO_CONFIG)
        node_b = Radio(b, boresight_deg=bearing_deg(b, a), config=DEFAULT_RADIO_CONFIG)
        forward = budget.best_alignment(node_a, node_b).snr_db
        backward = budget.best_alignment(node_b, node_a).snr_db
        assert forward == pytest.approx(backward, abs=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(points, points)
    def test_path_gain_reciprocal(self, a, b):
        assume(a.distance_to(b) > 0.5)
        budget = make_budget()
        forward = budget.channel.path_gain_db(budget.tracer.line_of_sight(a, b))
        backward = budget.channel.path_gain_db(budget.tracer.line_of_sight(b, a))
        assert forward == pytest.approx(backward, abs=1e-9)


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(points, points)
    def test_blockage_never_helps(self, a, b):
        """Adding an occluder can only reduce (or keep) the SNR."""
        assume(a.distance_to(b) > 1.0)
        budget = make_budget()
        tx = Radio(a, boresight_deg=bearing_deg(a, b), config=DEFAULT_RADIO_CONFIG)
        rx = Radio(b, boresight_deg=bearing_deg(b, a), config=DEFAULT_RADIO_CONFIG)
        los = budget.tracer.line_of_sight(a, b)
        clear = budget.measure_aligned(tx, rx, los).snr_db
        hand = hand_occluder(b, bearing_deg(b, a))
        blocked = budget.measure_aligned(tx, rx, los, extra_occluders=[hand]).snr_db
        assert blocked <= clear + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(points, points, st.floats(min_value=5.0, max_value=40.0))
    def test_misalignment_never_helps(self, a, b, offset_deg):
        """Steering away from the best alignment never raises SNR."""
        assume(a.distance_to(b) > 1.0)
        budget = make_budget()
        tx = Radio(a, boresight_deg=bearing_deg(a, b), config=DEFAULT_RADIO_CONFIG)
        rx = Radio(b, boresight_deg=bearing_deg(b, a), config=DEFAULT_RADIO_CONFIG)
        best = budget.best_alignment(tx, rx)
        skewed = budget.measure(
            tx,
            rx,
            tx_steer_deg=best.tx_steer_deg + offset_deg,
            rx_steer_deg=best.rx_steer_deg,
        )
        assert skewed.snr_db <= best.snr_db + 1e-9
