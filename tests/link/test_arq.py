"""Unit tests for frame delivery with ARQ."""

import math

import pytest

from repro.link.arq import (
    ArqFrameLink,
    DeliveryOutcome,
    delivery_statistics,
)
from repro.rate.mcs import mcs_by_index
from repro.vr.traffic import DEFAULT_TRAFFIC


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArqFrameLink(turnaround_s=-1.0)
        with pytest.raises(ValueError):
            ArqFrameLink(num_fragments=0)
        with pytest.raises(ValueError):
            ArqFrameLink(policy="yolo")

    def test_fragment_bits_cover_frame(self):
        link = ArqFrameLink(num_fragments=64)
        assert link.fragment_bits * 64 >= DEFAULT_TRAFFIC.frame_bits


class TestDeliverFrame:
    def test_high_snr_single_round(self):
        link = ArqFrameLink(rng=0)
        outcome = link.deliver_frame(30.0)
        assert outcome.delivered
        assert outcome.attempts == 1
        assert outcome.retransmissions == 0
        assert outcome.latency_s < DEFAULT_TRAFFIC.frame_deadline_s

    def test_latency_is_airtime_at_high_snr(self):
        link = ArqFrameLink(rng=0)
        outcome = link.deliver_frame(30.0)
        mcs = mcs_by_index(outcome.mcs_index)
        expected = link.num_fragments * link.fragment_airtime_s(mcs)
        assert outcome.latency_s == pytest.approx(expected, rel=1e-6)

    def test_outage_when_no_mcs(self):
        link = ArqFrameLink(rng=0)
        outcome = link.deliver_frame(-30.0)
        assert not outcome.delivered
        assert outcome.mcs_index is None
        assert outcome.latency_s == math.inf

    def test_slow_mcs_misses_deadline(self):
        # At 10 dB the viable MCS cannot push a raw frame in 10 ms.
        link = ArqFrameLink(rng=0)
        outcome = link.deliver_frame(10.0)
        assert not outcome.delivered
        assert outcome.latency_s == math.inf

    def test_deterministic_given_rng(self):
        a = ArqFrameLink(rng=5).deliver_many(16.0, 50)
        b = ArqFrameLink(rng=5).deliver_many(16.0, 50)
        assert [o.latency_s for o in a] == [o.latency_s for o in b]

    def test_num_frames_validated(self):
        with pytest.raises(ValueError):
            ArqFrameLink(rng=0).deliver_many(20.0, 0)


class TestDeadlineAwareSelection:
    def test_never_worse_than_margin_policy(self):
        for snr in (13.0, 15.0, 20.0, 30.0):
            smart = ArqFrameLink(policy="deadline-aware", rng=1)
            safe = ArqFrameLink(margin_db=2.0, rng=1)
            smart_stats = delivery_statistics(smart.deliver_many(snr, 100))
            safe_stats = delivery_statistics(safe.deliver_many(snr, 100))
            assert smart_stats["loss_rate"] <= safe_stats["loss_rate"] + 0.05

    def test_rescues_the_threshold_point(self):
        smart = ArqFrameLink(policy="deadline-aware", rng=2)
        stats = delivery_statistics(smart.deliver_many(13.0, 100))
        assert stats["loss_rate"] <= 0.05

    def test_selection_cached(self):
        link = ArqFrameLink(policy="deadline-aware", rng=3)
        link.deliver_frame(20.0)
        cached = link._mcs_cache[20.0]
        link.deliver_frame(20.0)
        assert link._mcs_cache[20.0] is cached

    def test_trials_validated(self):
        link = ArqFrameLink(policy="deadline-aware", rng=0)
        with pytest.raises(ValueError):
            link.select_mcs_deadline_aware(20.0, trials=0)


class TestDeliveryStatistics:
    def test_summary(self):
        outcomes = [
            DeliveryOutcome(True, 1, 0.005, 24),
            DeliveryOutcome(True, 2, 0.008, 24),
            DeliveryOutcome(False, 1, math.inf, 24),
        ]
        stats = delivery_statistics(outcomes)
        assert stats["frames"] == 3
        assert stats["loss_rate"] == pytest.approx(1.0 / 3.0)
        assert stats["mean_latency_ms"] == pytest.approx(6.5)

    def test_all_lost(self):
        stats = delivery_statistics([DeliveryOutcome(False, 0, math.inf, None)])
        assert stats["loss_rate"] == 1.0
        assert stats["mean_latency_ms"] == math.inf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            delivery_statistics([])
